package workload

import (
	"testing"

	"lava/internal/simtime"
	"lava/internal/trace"
)

// TestStreamMatchesGenerate is the streamed-vs-materialized byte-parity
// gate at the generator level: collecting the record stream must reproduce
// Generate's record slice exactly (same RNG consumption order), and the
// stream's Meta must carry the same pool geometry.
func TestStreamMatchesGenerate(t *testing.T) {
	spec := PoolSpec{
		Name: "stream-parity", Zone: "z1", Hosts: 48, TargetUtil: 0.65,
		Duration: 3 * simtime.Day, Prefill: 2 * simtime.Day,
		Seed: 42, Diurnal: 0.3,
	}
	want, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Stream(spec)
	if err != nil {
		t.Fatal(err)
	}
	meta := g.Meta()
	if meta.PoolName != want.PoolName || meta.Hosts != want.Hosts ||
		meta.HostShape() != want.HostShape() ||
		meta.WarmUp != want.WarmUp || meta.Horizon != want.Horizon {
		t.Fatalf("stream meta %+v disagrees with generated trace header %+v", meta, want)
	}
	got, err := trace.Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Records) {
		t.Fatalf("streamed %d records, generated %d", len(got), len(want.Records))
	}
	for i := range got {
		if got[i] != want.Records[i] {
			t.Fatalf("record %d: streamed %+v, generated %+v", i, got[i], want.Records[i])
		}
	}
}

// TestStreamDeterministic: two streams of the same spec must agree record
// for record (the property the mega scale cells rely on for reproducible
// BENCH rows).
func TestStreamDeterministic(t *testing.T) {
	spec := PoolSpec{
		Name: "stream-det", Zone: "z1", Hosts: 24, TargetUtil: 0.6,
		Duration: 2 * simtime.Day, Seed: 7,
	}
	a, err := Stream(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stream(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		ra, oka := a.Next()
		rb, okb := b.Next()
		if oka != okb {
			t.Fatalf("streams diverge in length at record %d", i)
		}
		if !oka {
			break
		}
		if ra != rb {
			t.Fatalf("record %d: %+v vs %+v", i, ra, rb)
		}
	}
	if a.Err() != nil || b.Err() != nil {
		t.Fatalf("stream errors: %v, %v", a.Err(), b.Err())
	}
}
