package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"lava/internal/cluster"
	"lava/internal/simtime"
	"lava/internal/trace"
)

// GenStream is an incremental synthetic-trace generator: the same record
// sequence Generate materializes, yielded one VM at a time so multi-
// million-VM scale traces can feed the simulator with O(1) resident
// generator state. Arrivals are emitted in nondecreasing time with
// strictly increasing IDs, so the emission order already is the canonical
// (arrival, ID) trace order.
type GenStream struct {
	spec PoolSpec
	mix  []TypeSpec
	wsum float64

	lambda float64
	meta   *trace.Trace
	rng    *rand.Rand
	total  time.Duration
	id     cluster.VMID
	now    time.Duration
	done   bool
	err    error
}

// Stream validates the spec, calibrates the arrival rate and returns a
// positioned generator cursor. The record sequence is deterministic in
// spec.Seed and identical to Generate's (which is now a collect over this
// cursor).
func Stream(spec PoolSpec) (*GenStream, error) {
	if spec.Hosts <= 0 {
		return nil, fmt.Errorf("workload: pool %q has no hosts", spec.Name)
	}
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("workload: pool %q has no duration", spec.Name)
	}
	if spec.TargetUtil <= 0 || spec.TargetUtil >= 1 {
		return nil, fmt.Errorf("workload: pool %q target utilization %v out of (0,1)", spec.Name, spec.TargetUtil)
	}
	mix := spec.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	shape := spec.HostShape
	if shape.IsZero() {
		shape = DefaultHostShape
	}

	// Calibrate the arrival rate so the *binding* resource dimension
	// reaches the target utilization in steady state: running demand per
	// dimension is lambda (VMs/h) x E[shape_dim x lifetime-hours].
	var wsum, coreHoursPerVM, memMBHoursPerVM float64
	for i := range mix {
		wsum += mix[i].Weight
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("workload: pool %q mix has zero weight", spec.Name)
	}
	for i := range mix {
		w := mix[i].Weight / wsum
		life := mix[i].meanLifetimeHours()
		coreHoursPerVM += w * mix[i].meanCores() * life
		memMBHoursPerVM += w * mix[i].meanCores() * float64(mix[i].MemPerCoreMB) * life
	}
	totalCores := float64(shape.CPUMilli) / 1000 * float64(spec.Hosts)
	totalMemMB := float64(shape.MemoryMB) * float64(spec.Hosts)
	lambda := spec.TargetUtil * totalCores / coreHoursPerVM // VMs per hour
	if memLambda := spec.TargetUtil * totalMemMB / memMBHoursPerVM; memLambda < lambda {
		lambda = memLambda
	}

	return &GenStream{
		spec:   spec,
		mix:    mix,
		wsum:   wsum,
		lambda: lambda,
		meta: &trace.Trace{
			PoolName: spec.Name,
			Hosts:    spec.Hosts,
			HostCPU:  shape.CPUMilli,
			HostMem:  shape.MemoryMB,
			HostSSD:  shape.SSDGB,
			WarmUp:   spec.Prefill,
			Horizon:  spec.Prefill + spec.Duration,
		},
		rng:   rand.New(rand.NewSource(spec.Seed)),
		total: spec.Prefill + spec.Duration,
		id:    spec.FirstVMID,
	}, nil
}

// Meta returns the trace geometry (pool name, hosts, host shape, warm-up,
// horizon) with an empty Records slice — what sim.NewMachine needs. The
// horizon is always set, so a streamed run has a well-defined measurement
// end without knowing the last exit.
func (g *GenStream) Meta() *trace.Trace { return g.meta }

// Next implements trace.Stream. The per-iteration RNG call order is the
// contract that keeps this bit-identical to the historical Generate loop:
// gap draw, end-of-window check, type pick, then the VM sample.
func (g *GenStream) Next() (trace.Record, bool) {
	if g.done {
		return trace.Record{}, false
	}
	// Diurnally modulated Poisson arrivals via rate scaling.
	rate := g.lambda
	if g.spec.Diurnal > 0 {
		phase := 2 * math.Pi * g.now.Hours() / 24
		rate = g.lambda * (1 + g.spec.Diurnal*math.Sin(phase))
	}
	gap := g.rng.ExpFloat64() / rate // hours
	g.now += simtime.FromHours(gap)
	if g.now >= g.total {
		g.done = true
		return trace.Record{}, false
	}
	ts := pickType(g.rng, g.mix, g.wsum)
	rec := sampleVM(g.rng, ts, g.id, g.now, g.spec.Zone)
	g.id++
	if !rec.Shape.Fits(g.meta.HostShape()) {
		// The structural subset of Trace.Validate that a custom HostShape
		// can actually violate; everything else holds by construction.
		g.done = true
		g.err = fmt.Errorf("workload: pool %q vm %d shape %s exceeds host %s", g.spec.Name, rec.ID, rec.Shape, g.meta.HostShape())
		return trace.Record{}, false
	}
	return rec, true
}

// Err implements trace.Stream.
func (g *GenStream) Err() error { return g.err }
