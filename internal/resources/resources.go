package resources

import "fmt"

// Vector is a multi-dimensional resource amount. CPU is measured in
// milli-cores so that fractional-core VM shapes stay integral, memory in
// MiB, and SSD in GiB. The zero Vector is empty.
type Vector struct {
	CPUMilli int64 // CPU in milli-cores (1000 = one core)
	MemoryMB int64 // memory in MiB
	SSDGB    int64 // local SSD in GiB (0 for VMs without SSD)
}

// Cores builds a Vector from whole cores / MiB / GiB.
func Cores(cores, memoryMB, ssdGB int64) Vector {
	return Vector{CPUMilli: cores * 1000, MemoryMB: memoryMB, SSDGB: ssdGB}
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	return Vector{v.CPUMilli + w.CPUMilli, v.MemoryMB + w.MemoryMB, v.SSDGB + w.SSDGB}
}

// Sub returns v - w. The caller is responsible for ensuring the result is
// meaningful; Sub does not clamp.
func (v Vector) Sub(w Vector) Vector {
	return Vector{v.CPUMilli - w.CPUMilli, v.MemoryMB - w.MemoryMB, v.SSDGB - w.SSDGB}
}

// Fits reports whether a VM of shape v fits into free capacity w in every
// dimension.
func (v Vector) Fits(w Vector) bool {
	return v.CPUMilli <= w.CPUMilli && v.MemoryMB <= w.MemoryMB && v.SSDGB <= w.SSDGB
}

// IsZero reports whether every dimension is zero.
func (v Vector) IsZero() bool {
	return v.CPUMilli == 0 && v.MemoryMB == 0 && v.SSDGB == 0
}

// NonNegative reports whether every dimension is >= 0.
func (v Vector) NonNegative() bool {
	return v.CPUMilli >= 0 && v.MemoryMB >= 0 && v.SSDGB >= 0
}

// Scale returns v with every dimension multiplied by f and truncated toward
// zero.
func (v Vector) Scale(f float64) Vector {
	return Vector{
		CPUMilli: int64(f * float64(v.CPUMilli)),
		MemoryMB: int64(f * float64(v.MemoryMB)),
		SSDGB:    int64(f * float64(v.SSDGB)),
	}
}

// Utilization returns the per-dimension used/capacity fractions of used
// relative to capacity cap. Dimensions with zero capacity report 0.
func Utilization(used, cap Vector) (cpu, mem, ssd float64) {
	if cap.CPUMilli > 0 {
		cpu = float64(used.CPUMilli) / float64(cap.CPUMilli)
	}
	if cap.MemoryMB > 0 {
		mem = float64(used.MemoryMB) / float64(cap.MemoryMB)
	}
	if cap.SSDGB > 0 {
		ssd = float64(used.SSDGB) / float64(cap.SSDGB)
	}
	return cpu, mem, ssd
}

// MaxUtilization returns the maximum per-dimension utilization of used
// relative to capacity. LAVA uses >=90% of CPU or memory as the open ->
// recycling transition trigger (§4.3).
func MaxUtilization(used, cap Vector) float64 {
	cpu, mem, _ := Utilization(used, cap)
	if cpu > mem {
		return cpu
	}
	return mem
}

// DominantShare returns the largest fraction any dimension of v occupies of
// capacity cap. It is the standard dominant-resource measure used by the
// best-fit policy.
func DominantShare(v, cap Vector) float64 {
	best := 0.0
	if cap.CPUMilli > 0 {
		if s := float64(v.CPUMilli) / float64(cap.CPUMilli); s > best {
			best = s
		}
	}
	if cap.MemoryMB > 0 {
		if s := float64(v.MemoryMB) / float64(cap.MemoryMB); s > best {
			best = s
		}
	}
	if cap.SSDGB > 0 {
		if s := float64(v.SSDGB) / float64(cap.SSDGB); s > best {
			best = s
		}
	}
	return best
}

// Imbalance measures how lopsided the free shape v is relative to capacity
// cap: the difference between the largest and smallest free fraction across
// the CPU and memory dimensions (SSD is excluded because many families have
// no SSD). A perfectly proportional free shape scores 0; a host with free
// memory but no free CPU scores ~1. The waste-minimization baseline
// minimizes this quantity to keep leftover shapes schedulable (§2.2).
func Imbalance(v, cap Vector) float64 {
	var fr []float64
	if cap.CPUMilli > 0 {
		fr = append(fr, float64(v.CPUMilli)/float64(cap.CPUMilli))
	}
	if cap.MemoryMB > 0 {
		fr = append(fr, float64(v.MemoryMB)/float64(cap.MemoryMB))
	}
	if len(fr) < 2 {
		return 0
	}
	lo, hi := fr[0], fr[0]
	for _, f := range fr[1:] {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return hi - lo
}

// String renders the vector in a compact human-readable form.
func (v Vector) String() string {
	return fmt.Sprintf("cpu=%dm mem=%dMB ssd=%dGB", v.CPUMilli, v.MemoryMB, v.SSDGB)
}
