package resources

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCores(t *testing.T) {
	v := Cores(4, 16384, 375)
	if v.CPUMilli != 4000 || v.MemoryMB != 16384 || v.SSDGB != 375 {
		t.Fatalf("Cores(4,16384,375) = %+v", v)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b, c, d, e, g int32) bool {
		v := Vector{int64(a), int64(b), int64(c)}
		w := Vector{int64(d), int64(e), int64(g)}
		return v.Add(w).Sub(w) == v && v.Sub(w).Add(w) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(a, b, c, d, e, g int32) bool {
		v := Vector{int64(a), int64(b), int64(c)}
		w := Vector{int64(d), int64(e), int64(g)}
		return v.Add(w) == w.Add(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFits(t *testing.T) {
	host := Cores(32, 131072, 750)
	if !Cores(4, 16384, 0).Fits(host) {
		t.Error("4-core VM should fit a 32-core host")
	}
	if Cores(33, 1, 0).Fits(host) {
		t.Error("33-core VM must not fit a 32-core host")
	}
	if Cores(1, 131073, 0).Fits(host) {
		t.Error("memory overflow must not fit")
	}
	if Cores(1, 1, 751).Fits(host) {
		t.Error("SSD overflow must not fit")
	}
	if !(Vector{}).Fits(Vector{}) {
		t.Error("zero fits zero")
	}
}

func TestFitsImpliesNonNegativeRemainder(t *testing.T) {
	f := func(a, b, c, d, e, g uint16) bool {
		v := Vector{int64(a), int64(b), int64(c)}
		w := Vector{int64(d), int64(e), int64(g)}
		if v.Fits(w) {
			return w.Sub(v).NonNegative()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsZero(t *testing.T) {
	if !(Vector{}).IsZero() {
		t.Error("zero vector must report IsZero")
	}
	if (Vector{CPUMilli: 1}).IsZero() {
		t.Error("nonzero CPU must not report IsZero")
	}
}

func TestScale(t *testing.T) {
	v := Cores(10, 1000, 100)
	half := v.Scale(0.5)
	if half.CPUMilli != 5000 || half.MemoryMB != 500 || half.SSDGB != 50 {
		t.Fatalf("Scale(0.5) = %+v", half)
	}
	if !v.Scale(0).IsZero() {
		t.Error("Scale(0) must be zero")
	}
}

func TestUtilization(t *testing.T) {
	cap := Cores(10, 1000, 0)
	used := Cores(5, 250, 0)
	cpu, mem, ssd := Utilization(used, cap)
	if math.Abs(cpu-0.5) > 1e-12 || math.Abs(mem-0.25) > 1e-12 || ssd != 0 {
		t.Fatalf("Utilization = %v %v %v", cpu, mem, ssd)
	}
	if got := MaxUtilization(used, cap); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MaxUtilization = %v, want 0.5", got)
	}
}

func TestDominantShare(t *testing.T) {
	cap := Cores(10, 1000, 100)
	v := Cores(1, 900, 10)
	if got := DominantShare(v, cap); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("DominantShare = %v, want 0.9", got)
	}
	if got := DominantShare(Vector{}, cap); got != 0 {
		t.Fatalf("DominantShare(zero) = %v, want 0", got)
	}
	if got := DominantShare(v, Vector{}); got != 0 {
		t.Fatalf("DominantShare with zero capacity = %v, want 0", got)
	}
}

func TestImbalance(t *testing.T) {
	cap := Cores(10, 1000, 0)
	// Proportional free shape: no imbalance.
	if got := Imbalance(Cores(5, 500, 0), cap); math.Abs(got) > 1e-12 {
		t.Fatalf("balanced Imbalance = %v, want 0", got)
	}
	// Free memory but no free CPU: fully stranded shape.
	if got := Imbalance(Vector{CPUMilli: 0, MemoryMB: 1000}, cap); math.Abs(got-1) > 1e-12 {
		t.Fatalf("stranded Imbalance = %v, want 1", got)
	}
}

func TestImbalanceRange(t *testing.T) {
	cap := Cores(64, 262144, 0)
	f := func(c, m uint32) bool {
		free := Vector{CPUMilli: int64(c) % (cap.CPUMilli + 1), MemoryMB: int64(m) % (cap.MemoryMB + 1)}
		im := Imbalance(free, cap)
		return im >= 0 && im <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	got := Cores(2, 8192, 375).String()
	want := "cpu=2000m mem=8192MB ssd=375GB"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
