// Package resources models the multi-dimensional resource vectors that make
// VM allocation harder than one-dimensional memory allocation (§2.5): every
// host and VM carries CPU, memory, and SSD dimensions, and stranding occurs
// when the dimensions are left imbalanced (e.g. free memory but no free
// CPUs, §2.3).
package resources
