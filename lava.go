// Package lava is the public facade of the LAVA reproduction: lifetime-aware
// VM allocation with learned distributions and adaptation to mispredictions
// (MLSys 2025).
//
// The facade wires together the internal packages for the common end-to-end
// flow — generate (or load) a trace, pick a lifetime model and a scheduling
// policy, replay the trace through the simulator, and read the bin-packing
// metrics the paper reports:
//
//	tr, _ := lava.GenerateTrace(lava.TraceConfig{Hosts: 64, TargetUtil: 0.65,
//	    Days: 14, PrefillDays: 10, Seed: 1})
//	pred, _ := lava.TrainModel(tr, lava.ModelGBDT)
//	res, _ := lava.Simulate(tr, lava.PolicyLAVA, pred)
//	fmt.Println(res.AvgEmptyHostFrac)
//
// Lower-level control (custom scoring chains, defragmentation engines,
// stranding probes, causal analysis) is available in the internal packages;
// see DESIGN.md for the map.
package lava

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"lava/internal/cell"
	"lava/internal/model"
	"lava/internal/model/gbdt"
	"lava/internal/ptrace"
	"lava/internal/runner"
	"lava/internal/scenario"
	"lava/internal/scheduler"
	"lava/internal/serve"
	"lava/internal/sim"
	"lava/internal/simtime"
	"lava/internal/slo"
	"lava/internal/trace"
	"lava/internal/workload"
)

// Trace is a replayable VM trace.
type Trace = trace.Trace

// Result is a simulation outcome.
type Result = sim.Result

// Predictor estimates remaining VM lifetimes.
type Predictor = model.Predictor

// TraceConfig configures synthetic trace generation.
type TraceConfig struct {
	Name        string  // pool name (default "pool")
	Hosts       int     // number of hosts (default 64)
	TargetUtil  float64 // steady-state CPU utilization (default 0.65)
	Days        int     // steady-state days to generate (default 14)
	PrefillDays int     // warm-up days before the measured window (default 10)
	Seed        int64
	E2          bool // use the cost-optimized E2 mix instead of C2
}

// GenerateTrace builds a production-like synthetic trace (see
// internal/workload for the distributional guarantees).
func GenerateTrace(cfg TraceConfig) (*Trace, error) {
	if cfg.Name == "" {
		cfg.Name = "pool"
	}
	if cfg.Hosts == 0 {
		cfg.Hosts = 64
	}
	if cfg.TargetUtil == 0 {
		cfg.TargetUtil = 0.65
	}
	if cfg.Days == 0 {
		cfg.Days = 14
	}
	if cfg.PrefillDays == 0 {
		cfg.PrefillDays = 10
	}
	var mix []workload.TypeSpec
	if cfg.E2 {
		mix = workload.E2Mix()
	}
	return workload.Generate(workload.PoolSpec{
		Name:       cfg.Name,
		Zone:       "zone-a",
		Hosts:      cfg.Hosts,
		TargetUtil: cfg.TargetUtil,
		Duration:   time.Duration(cfg.Days) * simtime.Day,
		Prefill:    time.Duration(cfg.PrefillDays) * simtime.Day,
		Seed:       cfg.Seed,
		Diurnal:    0.3,
		Mix:        mix,
	})
}

// ModelKind selects a lifetime model family.
type ModelKind string

// Supported model families (Table 4).
const (
	ModelGBDT   ModelKind = "gbdt"   // production model: gradient-boosted trees
	ModelKM     ModelKind = "km"     // stratified Kaplan-Meier lookup table
	ModelDist   ModelKind = "dist"   // empirical-distribution table
	ModelOracle ModelKind = "oracle" // ground-truth lifetimes
)

// TrainModel fits a lifetime model of the given kind on the trace's records.
// ModelOracle needs no training and ignores the trace.
func TrainModel(tr *Trace, kind ModelKind) (Predictor, error) {
	switch kind {
	case ModelGBDT:
		return model.TrainGBDT(tr.Records, gbdt.Params{Trees: 400})
	case ModelKM:
		return model.TrainKM(tr.Records, nil)
	case ModelDist:
		return model.TrainDistTable(tr.Records, nil)
	case ModelOracle:
		return model.Oracle{}, nil
	default:
		return nil, fmt.Errorf("lava: unknown model kind %q", kind)
	}
}

// PolicyKind selects a scheduling algorithm.
type PolicyKind string

// Supported policies.
const (
	PolicyWasteMin PolicyKind = "wastemin"  // production baseline (no lifetimes)
	PolicyBestFit  PolicyKind = "bestfit"   // classic best fit
	PolicyLABinary PolicyKind = "la-binary" // Barbalho et al., one-shot predictions
	PolicyNILAS    PolicyKind = "nilas"     // non-invasive lifetime-aware scheduling
	PolicyLAVA     PolicyKind = "lava"      // lifetime-aware VM allocation
)

// NewPolicy builds a policy over the given predictor with the default
// 1-minute host-score cache. The lifetime-unaware baselines accept a nil
// predictor.
func NewPolicy(kind PolicyKind, pred Predictor) (scheduler.Policy, error) {
	return newPolicy(kind, pred, time.Minute)
}

// newPolicy builds a policy with an explicit cache refresh interval
// (0 disables caching).
func newPolicy(kind PolicyKind, pred Predictor, refresh time.Duration) (scheduler.Policy, error) {
	switch kind {
	case PolicyWasteMin:
		return scheduler.NewWasteMin(), nil
	case PolicyBestFit:
		return scheduler.NewBestFit(), nil
	case PolicyLABinary, PolicyNILAS, PolicyLAVA:
		if pred == nil {
			return nil, fmt.Errorf("lava: policy %q needs a predictor", kind)
		}
		switch kind {
		case PolicyLABinary:
			return scheduler.NewLABinary(pred), nil
		case PolicyNILAS:
			return scheduler.NewNILAS(pred, refresh), nil
		default:
			return scheduler.NewLAVA(pred, refresh), nil
		}
	default:
		return nil, fmt.Errorf("lava: unknown policy kind %q", kind)
	}
}

// Simulate replays the trace under the policy and returns the metrics.
func Simulate(tr *Trace, kind PolicyKind, pred Predictor) (*Result, error) {
	pol, err := NewPolicy(kind, pred)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{Trace: tr, Policy: pol})
}

// SimSpec names one simulation in a SimulateMany batch.
type SimSpec struct {
	Name   string // identifies the run in errors; defaults to pool/policy
	Trace  *Trace
	Policy PolicyKind
	Pred   Predictor // may be nil for lifetime-unaware policies
}

// SimulateMany replays the specs concurrently across a bounded worker pool
// (parallel <= 0 uses GOMAXPROCS) and returns results in spec order.
// Results are identical to running each spec sequentially — see
// internal/runner for the determinism contract. The first failure cancels
// the remaining runs; cancelling ctx stops the batch at the next run
// boundary.
func SimulateMany(ctx context.Context, parallel int, specs ...SimSpec) ([]*Result, error) {
	jobs := make([]runner.Job, len(specs))
	for i, s := range specs {
		s := s
		name := s.Name
		if name == "" {
			name = s.Trace.PoolName + "/" + string(s.Policy)
		}
		jobs[i] = runner.Job{Name: name, Run: func() (*sim.Result, error) {
			// Policies carry mutable caches, so each run builds its own.
			pol, err := NewPolicy(s.Policy, s.Pred)
			if err != nil {
				return nil, err
			}
			return sim.Run(sim.Config{Trace: s.Trace, Policy: pol})
		}}
	}
	results, err := (&runner.Batch{Parallel: parallel}).Run(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("lava: %w", err)
	}
	out := make([]*Result, len(results))
	for i := range results {
		out[i] = results[i].Result
	}
	return out, nil
}

// RouterKind selects a cell router for multi-cell federations.
type RouterKind string

// Supported routers (see internal/cell).
const (
	RouterRoundRobin    RouterKind = "round-robin"    // spread arrivals cyclically
	RouterLeastUtilized RouterKind = "least-utilized" // balance committed load
	RouterFeatureHash   RouterKind = "feature-hash"   // stable affinity routing
)

// ScenarioNames lists the built-in scenario ids (internal/scenario):
// operational-event overlays — arrival surges, maintenance-drain waves,
// correlated failures, capacity crunches, mispredicting model pushes — that
// compose onto any trace. "steady" is the unmodified control arm.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioConfig shapes a SimulateScenario run.
type ScenarioConfig struct {
	// Scenario is a built-in scenario id (ScenarioNames); "" or "steady"
	// replays the trace unmodified.
	Scenario string

	// Seed drives scenario randomness (burst sampling, failure placement).
	Seed int64

	// Cells shards the workload across this many independent cells
	// (default 1: a single pool, no federation).
	Cells int

	// Router picks how records map to cells (default RouterFeatureHash).
	Router RouterKind

	// CacheRefresh is the host-score cache refresh interval for
	// lifetime-aware policies: 0 means the default (1 minute), negative
	// disables caching.
	CacheRefresh time.Duration

	// Parallel is the worker budget for the per-cell simulations: 1 runs
	// sequentially, <= 0 uses GOMAXPROCS. Results are identical at any
	// setting.
	Parallel int
}

// ComposeScenario applies a named scenario's trace-level events (surges,
// flash crowds) to a trace and returns the composed copy; the input is
// never mutated. This is the exact composition SimulateScenario and a
// scenario-enabled fleet (FleetConfig.Scenario) perform internally —
// exported so load drivers can replay the same composed arrival stream
// against a live fleet and byte-compare the outcome with the offline run.
func ComposeScenario(tr *Trace, name string, seed int64) (*Trace, error) {
	if name == "" {
		name = "steady"
	}
	spec, err := scenario.ByName(name, tr, seed)
	if err != nil {
		return nil, err
	}
	return spec.ComposeTrace(tr)
}

// SimulateScenario composes a named scenario onto the trace, shards the
// result across a multi-cell federation, replays every cell concurrently
// under the policy, and rolls the per-cell metrics back up. Deterministic
// given (trace, cfg.Seed) at any Parallel setting.
func SimulateScenario(ctx context.Context, tr *Trace, kind PolicyKind, pred Predictor, cfg ScenarioConfig) (*cell.Rollup, error) {
	name := cfg.Scenario
	if name == "" {
		name = "steady"
	}
	spec, err := scenario.ByName(name, tr, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cells := cfg.Cells
	if cells <= 0 {
		cells = 1
	}
	routerKind := cfg.Router
	if routerKind == "" {
		routerKind = RouterFeatureHash
	}

	composed, err := spec.ComposeTrace(tr)
	if err != nil {
		return nil, err
	}
	plan, err := cell.PlanCells(composed, string(routerKind), cells)
	if err != nil {
		return nil, err
	}

	if pred != nil {
		pred = spec.WrapModel(pred)
	}
	refresh := cfg.CacheRefresh
	switch {
	case refresh == 0:
		refresh = time.Minute
	case refresh < 0:
		refresh = 0
	}
	jobs := make([]runner.Job, len(plan.Cells))
	for i, ct := range plan.Cells {
		i, ct := i, ct
		jobs[i] = runner.Job{Name: ct.PoolName, Seed: cfg.Seed, Run: func() (*sim.Result, error) {
			pol, err := newPolicy(kind, pred, refresh)
			if err != nil {
				return nil, err
			}
			return sim.Run(sim.Config{Trace: ct, Policy: pol, Injectors: spec.Injectors(i)})
		}}
	}
	results, err := (&runner.Batch{Parallel: cfg.Parallel}).Run(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("lava: scenario %s: %w", name, err)
	}
	sims := make([]*sim.Result, len(results))
	for i := range results {
		sims[i] = results[i].Result
	}
	return cell.RollUp(plan.Router, plan.Hosts, sims)
}

// ServeConfig shapes NewServer and Serve.
type ServeConfig struct {
	// Policy is the serving policy (default PolicyLAVA).
	Policy PolicyKind

	// Pred is the lifetime model behind lifetime-aware policies; nil is
	// fine for PolicyWasteMin/PolicyBestFit.
	Pred Predictor

	// Memo interposes a (features, uptime) memo-cache in front of Pred.
	// Only correct for feature-pure model families (gbdt, km, dist, mlp,
	// cox) — leave it off for ModelOracle, whose predictions depend on the
	// individual VM. Memoization never changes decisions, only their cost.
	Memo bool

	// CacheRefresh is the host-score cache refresh interval, with
	// ScenarioConfig's convention: 0 = default (1 minute), negative =
	// disabled.
	CacheRefresh time.Duration

	// TickEvery/SampleEvery default to the simulator's 5m / 1h.
	TickEvery   time.Duration
	SampleEvery time.Duration

	// QueueDepth bounds the admission queue (default 256).
	QueueDepth int

	// TraceK > 0 enables decision tracing: every placement decision is
	// recorded with the chosen host and its top-TraceK scored alternatives,
	// queryable over GET /trace. Tracing is observe-only — decisions are
	// identical with it on or off.
	TraceK int

	// TraceCap bounds the in-memory trace ring in decisions (0 = the
	// serving default of 8192, negative = unbounded). Older decisions are
	// overwritten once the ring is full.
	TraceCap int

	// TraceOut, if non-nil, additionally streams every recorded decision
	// as a JSON line the moment it is made (ignored in fleet mode, where
	// per-cell streams would interleave nondeterministically — query each
	// cell's ring instead).
	TraceOut io.Writer

	// Admission configures SLO-class token-bucket admission control, as a
	// spec string parsed by slo.ParseConfig:
	//
	//	"latency=100/1m:200,standard=50/1m"   per-class refill/window[:burst]
	//	"track"                               no limits, per-class accounting only
	//	""                                    admission layer off entirely
	//
	// Unlisted classes stay unlimited. Rejected placements answer HTTP 429
	// with the class and the virtual time of the next token; they consume
	// their sequence turn but never a placement.
	Admission string
}

// NewServer builds an online placement server (internal/serve) over the
// trace's pool geometry: the daemon form of Simulate. The trace's records
// are not replayed — clients drive placements over the HTTP API
// (Server.Handler) or the typed methods; replaying the same trace through
// serve.Client.Replay reproduces Simulate's result byte-for-byte.
func NewServer(tr *Trace, cfg ServeConfig) (*serve.Server, error) {
	kind := cfg.Policy
	if kind == "" {
		kind = PolicyLAVA
	}
	pred := cfg.Pred
	var memo *serve.MemoPredictor
	if cfg.Memo && pred != nil {
		memo = serve.Memoize(pred, 0)
		pred = memo
	}
	refresh := cfg.CacheRefresh
	switch {
	case refresh == 0:
		refresh = time.Minute
	case refresh < 0:
		refresh = 0
	}
	pol, err := newPolicy(kind, pred, refresh)
	if err != nil {
		return nil, err
	}
	adm, err := slo.ParseConfig(cfg.Admission)
	if err != nil {
		return nil, err
	}
	sc := serve.FromTrace(tr)
	sc.Policy = pol
	sc.TickEvery = cfg.TickEvery
	sc.SampleEvery = cfg.SampleEvery
	sc.QueueDepth = cfg.QueueDepth
	sc.Memo = memo
	sc.TraceK = cfg.TraceK
	sc.TraceCap = cfg.TraceCap
	sc.TraceOut = cfg.TraceOut
	sc.SLO = adm
	return serve.New(sc)
}

// Serve runs a placement server on addr until ctx is cancelled, then shuts
// the listener down gracefully and stops the event loop. It blocks for the
// server's lifetime; the error is http.ErrServerClosed-free (a clean
// shutdown returns nil).
func Serve(ctx context.Context, addr string, tr *Trace, cfg ServeConfig) error {
	srv, err := NewServer(tr, cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	return serveHTTP(ctx, addr, srv.Handler())
}

// FleetConfig shapes NewFleet and ServeFleet: the single-server ServeConfig
// plus the federation dimensions.
type FleetConfig struct {
	ServeConfig

	// Cells is the number of independent serving cells (default 1). Each
	// cell owns its own pool, policy instance and event loop, so a fleet
	// serves placements in parallel across cores.
	Cells int

	// Router picks how placements map to cells (default RouterFeatureHash).
	// RouterLeastUtilized is served live: it consults the fleet's running
	// commitment ledger instead of the offline router's ground-truth
	// lifetime heap.
	Router RouterKind

	// Scenario, when non-empty, runs the fleet under a named operational
	// scenario (ScenarioNames): the fleet's pool geometry comes from the
	// scenario-composed trace, every cell gets the scenario's tick
	// injectors (drain waves, failures, crunches fire live inside the
	// cell event loops), and the predictor is wrapped with the scenario's
	// model events. A client replaying the composed trace (ComposeScenario)
	// against such a fleet reproduces SimulateScenario byte-for-byte.
	Scenario string

	// ScenarioSeed drives scenario randomness; must match the seed of the
	// offline arm being compared against.
	ScenarioSeed int64

	// ClassMix labels the replayed event stream with SLO classes (see
	// AssignClasses; seeded by ScenarioSeed). A live fleet ignores it —
	// online requests carry their class on the wire — but
	// ReplayFleetOffline needs it to reconstruct the classed stream a
	// lavaload -class-mix replay sends, scenario-added arrivals included.
	ClassMix string
}

// NewFleet builds a federated placement front-end (serve.Fleet) over the
// trace's pool geometry: hosts split evenly across cfg.Cells exactly as
// cell.SplitHosts shards them offline, one policy instance per cell, one
// shared prediction memo-cache. Replaying a trace against the fleet
// reproduces cell.PlanCells + per-cell Simulate byte-for-byte for the
// statically routed router kinds — the parity test in internal/serve
// asserts it.
func NewFleet(tr *Trace, cfg FleetConfig) (*serve.Fleet, error) {
	fc, _, err := buildFleetConfig(tr, cfg)
	if err != nil {
		return nil, err
	}
	return serve.NewFleet(fc)
}

// buildFleetConfig resolves a facade FleetConfig into the serve-layer one:
// scenario composition, memoization, policy factory, router and admission
// defaults. It also returns the (possibly scenario-composed) trace the fleet
// geometry came from — the event stream an offline reference replay must
// use. Shared by NewFleet and ReplayFleetOffline so the two arms of a
// parity comparison cannot drift in setup.
func buildFleetConfig(tr *Trace, cfg FleetConfig) (serve.FleetConfig, *Trace, error) {
	kind := cfg.Policy
	if kind == "" {
		kind = PolicyLAVA
	}
	var spec *scenario.Spec
	if cfg.Scenario != "" {
		s, err := scenario.ByName(cfg.Scenario, tr, cfg.ScenarioSeed)
		if err != nil {
			return serve.FleetConfig{}, nil, err
		}
		spec = &s
		composed, err := s.ComposeTrace(tr)
		if err != nil {
			return serve.FleetConfig{}, nil, err
		}
		tr = composed
	}
	if cfg.ClassMix != "" {
		// Label after scenario composition so scenario-added arrivals get
		// classes too — the same compose-then-label order lavaload uses.
		labeled, err := AssignClasses(tr, cfg.ClassMix, cfg.ScenarioSeed)
		if err != nil {
			return serve.FleetConfig{}, nil, err
		}
		tr = labeled
	}
	pred := cfg.Pred
	var memo *serve.MemoPredictor
	if cfg.Memo && pred != nil {
		memo = serve.Memoize(pred, 0)
		pred = memo
	}
	if spec != nil && pred != nil {
		// Model events wrap OUTSIDE the memo: a swapped model's output
		// depends on per-VM state (creation time) the memo key cannot
		// capture, so memoizing it would change decisions. Memoizing the
		// feature-pure base and wrapping the swap around it keeps both the
		// cache hits and the scenario semantics.
		pred = spec.WrapModel(pred)
	}
	refresh := cfg.CacheRefresh
	switch {
	case refresh == 0:
		refresh = time.Minute
	case refresh < 0:
		refresh = 0
	}
	router := cfg.Router
	if router == "" {
		router = RouterFeatureHash
	}
	adm, err := slo.ParseConfig(cfg.Admission)
	if err != nil {
		return serve.FleetConfig{}, nil, err
	}
	fc := serve.FleetFromTrace(tr)
	if spec != nil {
		fc.Injectors = spec.Injectors
	}
	fc.Cells = cfg.Cells
	if fc.Cells <= 0 {
		fc.Cells = 1
	}
	fc.Router = string(router)
	fc.TickEvery = cfg.TickEvery
	fc.SampleEvery = cfg.SampleEvery
	fc.QueueDepth = cfg.QueueDepth
	fc.Memo = memo
	fc.TraceK = cfg.TraceK
	fc.TraceCap = cfg.TraceCap
	fc.SLO = adm
	fc.NewPolicy = func(int) (scheduler.Policy, error) {
		return newPolicy(kind, pred, refresh)
	}
	return fc, tr, nil
}

// ReplayFleetOffline computes, without any servers or HTTP, the exact drain
// report a fleet built by NewFleet(tr, cfg) produces when the trace's event
// stream is replayed against it (serve.Client.Replay, any concurrency): the
// offline arm of the federated parity harness, admission gate included. The
// scenario composition, cell split, routing and token-bucket decisions all
// run through the same code paths the live fleet uses, just sequentially.
func ReplayFleetOffline(tr *Trace, cfg FleetConfig) (*serve.FleetDrainResponse, error) {
	fc, composed, err := buildFleetConfig(tr, cfg)
	if err != nil {
		return nil, err
	}
	roll, err := serve.RunScriptOffline(fc, serve.OpsFromTrace(composed))
	if err != nil {
		return nil, err
	}
	pol, err := fc.NewPolicy(0)
	if err != nil {
		return nil, err
	}
	resp := serve.FleetReportOf(fc.PoolName, pol.Name(), roll)
	return &resp, nil
}

// ServeFleet runs a federated placement fleet on addr until ctx is
// cancelled: the multi-cell form of Serve, same HTTP surface, rolled-up
// stats and drain. It blocks for the fleet's lifetime; a clean shutdown
// returns nil.
func ServeFleet(ctx context.Context, addr string, tr *Trace, cfg FleetConfig) error {
	fleet, err := NewFleet(tr, cfg)
	if err != nil {
		return err
	}
	defer fleet.Close()
	return serveHTTP(ctx, addr, fleet.Handler())
}

// serveHTTP runs handler on addr until ctx cancels, then shuts the
// listener down gracefully. Shared by Serve and ServeFleet.
func serveHTTP(ctx context.Context, addr string, handler http.Handler) error {
	hs := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		return nil
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}

// ReplayOptions shapes ReplayTrace. The zero value replays serially, as
// fast as the server accepts, and drains at the end.
type ReplayOptions = serve.ReplayOptions

// ReplayReport is the outcome of ReplayTrace: request count, wall time,
// client-observed latency summary, and (unless SkipDrain) the server's
// final aggregates.
type ReplayReport = serve.ReplayReport

// ReplayTrace replays the trace's event stream against a placement server
// at baseURL (e.g. "http://127.0.0.1:8080"): the library form of
// cmd/lavaload. Requests are sequence-numbered, so the served decisions
// match an offline Simulate of the same trace byte-for-byte at any
// concurrency.
func ReplayTrace(ctx context.Context, baseURL string, tr *Trace, opt ReplayOptions) (*ReplayReport, error) {
	return (&serve.Client{Base: baseURL}).Replay(ctx, tr, opt)
}

// AssignClasses labels a trace's records with SLO classes drawn from a mix
// spec — "latency=1,standard=8,besteffort=1" style weights over the three
// classes (see internal/slo.ParseMix) — and returns the labeled copy; the
// input is never mutated. Assignment is a pure function of (seed, record
// ID): independent of record order, so both arms of an online/offline
// comparison label identically, and stable under scenario composition.
// Classes never influence placement or routing — only admission and
// per-class accounting.
func AssignClasses(tr *Trace, mix string, seed int64) (*Trace, error) {
	m, err := slo.ParseMix(mix)
	if err != nil {
		return nil, err
	}
	if m.Zero() {
		return tr, nil
	}
	return slo.AssignClasses(tr, m, seed), nil
}

// --- decision tracing & counterfactual replay ---------------------------

// TraceOptions configures a decision recorder (see internal/ptrace): K is
// the number of scored alternatives kept per decision, Capacity bounds the
// ring (0 = unbounded), Out optionally streams decisions as JSON lines.
type TraceOptions = ptrace.Options

// TraceRecorder is a ring-buffered recorder of placement decisions.
type TraceRecorder = ptrace.Recorder

// TraceDecision is one recorded decision: the event kind, virtual time,
// VM, chosen host, deciding chain level and the top-K scored alternatives.
type TraceDecision = ptrace.Decision

// TraceFilter selects decisions from a recorder; see TraceRecorder.Query.
type TraceFilter = ptrace.Filter

// TraceQueryResult is a filtered, paginated page of recorded decisions.
type TraceQueryResult = ptrace.QueryResult

// TraceReplayConfig shapes ReplayDecisions: the recorded pool geometry
// plus the candidate policy to re-price the stream under.
type TraceReplayConfig = ptrace.ReplayConfig

// TraceReplayReport is a counterfactual replay outcome: per-decision
// matches, divergences and regret.
type TraceReplayReport = ptrace.Report

// NewTraceRecorder builds a decision recorder to pass to SimulateTraced
// (or internal/sim's Config.Tracer directly).
func NewTraceRecorder(opt TraceOptions) *TraceRecorder { return ptrace.New(opt) }

// SimulateTraced is Simulate with a decision recorder attached: every
// placement decision lands in rec alongside the simulation's normal
// metrics. Tracing is observe-only — the Result is identical to an
// untraced Simulate.
func SimulateTraced(tr *Trace, kind PolicyKind, pred Predictor, rec *TraceRecorder) (*Result, error) {
	pol, err := NewPolicy(kind, pred)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{Trace: tr, Policy: pol, Tracer: rec})
}

// ReplayDecisions feeds a recorded decision stream through a different
// policy without re-simulating (counterfactual replay): the pool follows
// the recorded trajectory while the candidate policy is asked what it
// would have chosen at every decision. See internal/ptrace for the parity
// contract (self-replay is exact; re-simulation agrees at the first
// divergence). The stream must include creation records, i.e. come from
// an unbounded recorder.
func ReplayDecisions(cfg TraceReplayConfig, decisions []TraceDecision) (*TraceReplayReport, error) {
	return ptrace.Replay(cfg, decisions)
}

// Compare runs several policies on the same trace and returns results keyed
// by policy kind — the quickest way to reproduce the paper's headline
// comparison on one pool. The policies run concurrently via SimulateMany.
func Compare(tr *Trace, pred Predictor, kinds ...PolicyKind) (map[PolicyKind]*Result, error) {
	if len(kinds) == 0 {
		kinds = []PolicyKind{PolicyWasteMin, PolicyLABinary, PolicyNILAS, PolicyLAVA}
	}
	specs := make([]SimSpec, len(kinds))
	for i, k := range kinds {
		specs[i] = SimSpec{Trace: tr, Policy: k, Pred: pred}
	}
	results, err := SimulateMany(context.Background(), 0, specs...)
	if err != nil {
		return nil, err
	}
	out := make(map[PolicyKind]*Result, len(kinds))
	for i, k := range kinds {
		out[k] = results[i]
	}
	return out, nil
}
