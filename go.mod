module lava

go 1.24
