// Pool-scale placement benchmarks: the placement hot path measured directly
// (Schedule + Place + policy hooks, with paired exits holding occupancy
// steady) at 1k and 10k hosts, for the incremental score-cache engine vs
// the exhaustive reference. Sub-benchmark names are benchstat-comparable:
//
//	go test -run '^$' -bench BenchmarkScalePlacement -count=6 . | tee new.txt
//	benchstat old.txt new.txt
//
// The acceptance bar for the cache (see DESIGN.md §6) is >= 2x over the
// exhaustive engine at 10k hosts on the fig6 workload mix; CI's bench-gate
// holds the cached numbers against regressions. The full 1k/10k/50k sweep
// with end-to-end replays lives in `cmd/experiments -exp scale`.
package lava

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"lava/internal/cluster"
	"lava/internal/model"
	"lava/internal/resources"
	"lava/internal/scheduler"
	"lava/internal/workload"
)

// scaleFixture is a steady-state pool plus a ring of arrival specs drawn
// from the fig6 (DefaultMix) workload: shapes and lifetime laws mirror the
// paper's mix without paying for full trace generation at 10k+ hosts.
type scaleFixture struct {
	hosts    int
	prefill  []benchVMSpec // placed round-robin to reach ~65% utilization
	arrivals []benchVMSpec // ring of steady-state arrival specs
}

type benchVMSpec struct {
	shape resources.Vector
	life  time.Duration
}

// sampleBenchVM draws one spec from the DefaultMix type catalog: the type
// by arrival weight, a shape from its core options, and a lifetime from its
// mixture-of-log-normals law (the same families workload.Generate samples).
func sampleBenchVM(rng *rand.Rand, mix []workload.TypeSpec, wsum float64) benchVMSpec {
	r := rng.Float64() * wsum
	ts := &mix[len(mix)-1]
	for i := range mix {
		if r -= mix[i].Weight; r <= 0 {
			ts = &mix[i]
			break
		}
	}
	cores := ts.Cores[rng.Intn(len(ts.Cores))]
	shape := resources.Vector{CPUMilli: cores * 1000, MemoryMB: cores * ts.MemPerCoreMB}
	if rng.Float64() < ts.SSDProb {
		shape.SSDGB = ts.SSDGB
	}
	m := ts.Modes[0]
	if len(ts.Modes) > 1 && rng.Float64() > m.Weight {
		m = ts.Modes[1]
	}
	life := time.Duration(m.MedianHours * math.Exp(rng.NormFloat64()*m.Sigma) * float64(time.Hour))
	if life < time.Minute {
		life = time.Minute
	}
	return benchVMSpec{shape: shape, life: life}
}

// newScaleFixture builds the fixture once per pool size (cached across
// sub-benchmarks).
func newScaleFixture(hosts int) *scaleFixture {
	rng := rand.New(rand.NewSource(int64(hosts)))
	mix := workload.DefaultMix()
	var wsum float64
	for i := range mix {
		wsum += mix[i].Weight
	}
	f := &scaleFixture{hosts: hosts}

	// Prefill to ~65% of pool CPU with mix-weighted VMs.
	capacity := workload.DefaultHostShape
	target := int64(float64(capacity.CPUMilli) * 0.65 * float64(hosts))
	var filled int64
	for filled < target {
		s := sampleBenchVM(rng, mix, wsum)
		f.prefill = append(f.prefill, s)
		filled += s.shape.CPUMilli
	}
	for i := 0; i < 8192; i++ {
		f.arrivals = append(f.arrivals, sampleBenchVM(rng, mix, wsum))
	}
	return f
}

var scaleFixtures = map[int]*scaleFixture{}

func scaleFixtureFor(b *testing.B, hosts int) *scaleFixture {
	b.Helper()
	f := scaleFixtures[hosts]
	if f == nil {
		f = newScaleFixture(hosts)
		scaleFixtures[hosts] = f
	}
	return f
}

// buildScalePool places the prefill population round-robin (no scheduling)
// and warms the policy with the per-placement hooks, producing the steady
// state both engines start from.
func buildScalePool(b *testing.B, f *scaleFixture, pol scheduler.Policy) *cluster.Pool {
	b.Helper()
	p := cluster.NewPool("scale", f.hosts, workload.DefaultHostShape)
	id := cluster.VMID(1)
	hi := 0
	for _, s := range f.prefill {
		placed := false
		for try := 0; try < f.hosts; try++ {
			h := p.Host(cluster.HostID(hi % f.hosts))
			hi++
			if h.Fits(s.shape) {
				vm := &cluster.VM{ID: id, Shape: s.shape, Created: 0, TrueLifetime: s.life}
				if err := p.Place(vm, h); err != nil {
					b.Fatal(err)
				}
				pol.OnPlaced(p, h, vm, 0)
				id++
				placed = true
				break
			}
		}
		if !placed {
			break // pool saturated for this shape; close enough to steady
		}
	}
	return p
}

// BenchmarkScalePlacement measures one steady-state placement decision
// (Schedule + Place + OnPlaced) per op, with a paired exit every op to hold
// occupancy constant. The engine dimension is the benchstat comparison that
// backs the score cache's speedup claim.
func BenchmarkScalePlacement(b *testing.B) {
	pred := model.Oracle{}
	for _, hosts := range []int{1000, 10000} {
		f := scaleFixtureFor(b, hosts)
		for _, pc := range []struct {
			name string
			mk   func() scheduler.Policy
		}{
			{"wastemin", func() scheduler.Policy { return scheduler.NewWasteMin() }},
			{"nilas", func() scheduler.Policy { return scheduler.NewNILAS(pred, time.Minute) }},
			{"lava", func() scheduler.Policy { return scheduler.NewLAVA(pred, time.Minute) }},
			// Epoch-quantized variants: the fully-static chains the mega
			// scale cells run. On the cached engine every level is served
			// from cache, which removes the dynamic temporal level's
			// O(feasible hosts) floor (see internal/scheduler/epoch.go).
			{"nilas-epoch", func() scheduler.Policy {
				return scheduler.NewNILASEpoch(pred, time.Minute, scheduler.DefaultEpoch)
			}},
			{"lava-epoch", func() scheduler.Policy {
				return scheduler.NewLAVAEpoch(pred, time.Minute, scheduler.DefaultEpoch)
			}},
		} {
			for _, eng := range []struct {
				name string
				e    scheduler.Engine
			}{{"cached", scheduler.EngineCached}, {"exhaustive", scheduler.EngineExhaustive}} {
				b.Run(fmt.Sprintf("hosts=%d/policy=%s/engine=%s", hosts, pc.name, eng.name), func(b *testing.B) {
					pol := scheduler.SetEngine(pc.mk(), eng.e)
					p := buildScalePool(b, f, pol)
					now := time.Hour
					nextID := cluster.VMID(1_000_000)
					type placedVM struct {
						id cluster.VMID
						vm *cluster.VM
					}
					// Exit lag: each op exits the VM placed lagN ops ago, so
					// the pool neither drains nor fills during the run.
					const lagN = 64
					var ring [lagN]placedVM
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						s := f.arrivals[i%len(f.arrivals)]
						now += 50 * time.Millisecond
						if old := ring[i%lagN]; old.vm != nil {
							if h, vm, err := p.Exit(old.id); err == nil {
								pol.OnExited(p, h, vm, now)
							}
						}
						ring[i%lagN] = placedVM{}
						vm := &cluster.VM{ID: nextID, Shape: s.shape, Created: now, TrueLifetime: s.life}
						nextID++
						h, err := pol.Schedule(p, vm, now)
						if err != nil {
							continue // momentarily saturated for this shape
						}
						if err := p.Place(vm, h); err != nil {
							b.Fatal(err)
						}
						pol.OnPlaced(p, h, vm, now)
						ring[i%lagN] = placedVM{id: vm.ID, vm: vm}
					}
					b.ReportMetric(float64(p.NumHosts()), "hosts")
				})
			}
		}
	}
}
