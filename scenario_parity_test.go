package lava

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"lava/internal/serve"
	"lava/internal/slo"
)

// TestScenarioOnlineOfflineParity is the elasticity harness's outermost
// contract: a scenario run ONLINE — a live fleet with the scenario's
// injectors firing inside each cell's event loop, driven over HTTP at
// concurrency 8 — produces a drain report byte-identical to the offline
// scripted equivalent (SimulateScenario). Trace-level events are replayed
// as the composed arrival stream, tick-level events fire live, model-level
// events wrap the live predictor; nothing about going online may change a
// single decision.
func TestScenarioOnlineOfflineParity(t *testing.T) {
	tr := smallTrace(t)
	pred, err := TrainModel(tr, ModelOracle)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7
	for _, name := range []string{"surge", "crunch", "drain-wave", "failures", "model-swap"} {
		name := name
		t.Run(name, func(t *testing.T) {
			roll, err := SimulateScenario(context.Background(), tr, PolicyLAVA, pred, ScenarioConfig{
				Scenario: name,
				Seed:     seed,
				Cells:    3,
				Router:   RouterFeatureHash,
			})
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(serve.FleetReportOf(tr.PoolName, roll.Cells[0].Policy, roll))
			if err != nil {
				t.Fatal(err)
			}

			fleet, err := NewFleet(tr, FleetConfig{
				ServeConfig:  ServeConfig{Policy: PolicyLAVA, Pred: pred},
				Cells:        3,
				Router:       RouterFeatureHash,
				Scenario:     name,
				ScenarioSeed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer fleet.Close()
			hs := httptest.NewServer(fleet.Handler())
			defer hs.Close()

			// The client replays the composed arrival stream — the exact
			// trace the offline arm simulated — while the fleet's injectors
			// reproduce the tick-level events internally.
			composed, err := ComposeScenario(tr, name, seed)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := (&serve.Client{Base: hs.URL}).Replay(context.Background(), composed, serve.ReplayOptions{Concurrency: 8})
			if err != nil {
				t.Fatal(err)
			}
			if rep.FleetFinal == nil {
				t.Fatal("fleet replay returned no fleet drain report")
			}
			got, err := json.Marshal(*rep.FleetFinal)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("online scenario diverged from offline:\nonline:  %s\noffline: %s", got, want)
			}
		})
	}
}

// TestClassedAdmissionOnlineOfflineParity is the SLO layer's outermost
// property test: a scenario-composed trace labeled with SLO classes, replayed
// against a live fleet whose front door runs per-class token buckets, drains
// byte-identically to ReplayFleetOffline — at 1 worker and at 8. The surge
// scenario adds arrivals of its own, so the test also proves the
// compose-then-label order: scenario-injected VMs are classed exactly as the
// offline arm classes them.
func TestClassedAdmissionOnlineOfflineParity(t *testing.T) {
	tr := smallTrace(t)
	pred, err := TrainModel(tr, ModelOracle)
	if err != nil {
		t.Fatal(err)
	}
	const (
		seed  = 7
		mix   = "latency=2,standard=6,besteffort=2"
		admit = "besteffort=1/6h:2"
	)
	cfg := FleetConfig{
		ServeConfig:  ServeConfig{Policy: PolicyLAVA, Pred: pred, Admission: admit},
		Cells:        3,
		Router:       RouterFeatureHash,
		Scenario:     "surge",
		ScenarioSeed: seed,
		ClassMix:     mix,
	}

	offline, err := ReplayFleetOffline(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := offline.Metrics.SLO
	if sum == nil {
		t.Fatal("offline classed replay carries no SLO summary")
	}
	if be := sum.Classes[slo.ClassBestEffort]; be == nil || be.Rejected == 0 {
		t.Fatalf("admission config rejected nothing — the parity claim would be vacuous: %+v", sum.Classes)
	}
	if sum.Fairness >= 1 || sum.Fitness <= 0 {
		t.Fatalf("fairness %v / fitness %v out of range for a shaped replay", sum.Fairness, sum.Fitness)
	}
	want, err := json.Marshal(*offline)
	if err != nil {
		t.Fatal(err)
	}

	// The online client sends the exact stream the offline arm simulated:
	// compose the scenario, then label — the same order buildFleetConfig uses.
	composed, err := ComposeScenario(tr, "surge", seed)
	if err != nil {
		t.Fatal(err)
	}
	classed, err := AssignClasses(composed, mix, seed)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		fleet, err := NewFleet(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(fleet.Handler())
		rep, err := (&serve.Client{Base: hs.URL}).Replay(context.Background(), classed, serve.ReplayOptions{Concurrency: workers})
		hs.Close()
		fleet.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.FleetFinal == nil {
			t.Fatalf("workers=%d: no fleet drain report", workers)
		}
		got, err := json.Marshal(*rep.FleetFinal)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("classed online replay (workers=%d) diverged from offline:\nonline:  %s\noffline: %s", workers, got, want)
		}
		if rep.Rejected == 0 {
			t.Fatalf("workers=%d: client saw no 429s despite gate rejections", workers)
		}
	}
}

// TestClassMixAloneChangesNothing is the back-compat half of the contract:
// labeling a trace with SLO classes while leaving every bucket unlimited (no
// Admission spec) must not move a single byte of the drain report relative to
// the unclassed fleet — classes without admission are pure metadata.
func TestClassMixAloneChangesNothing(t *testing.T) {
	tr := smallTrace(t)
	pred, err := TrainModel(tr, ModelOracle)
	if err != nil {
		t.Fatal(err)
	}
	base := FleetConfig{
		ServeConfig: ServeConfig{Policy: PolicyLAVA, Pred: pred},
		Cells:       3,
		Router:      RouterFeatureHash,
	}
	plain, err := ReplayFleetOffline(tr, base)
	if err != nil {
		t.Fatal(err)
	}
	classedCfg := base
	classedCfg.ClassMix = "latency=1,standard=1,besteffort=1"
	classed, err := ReplayFleetOffline(tr, classedCfg)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := json.Marshal(*plain)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := json.Marshal(*classed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb, cb) {
		t.Fatalf("class labels with unlimited buckets changed the drain report:\nclassed:   %s\nunclassed: %s", cb, pb)
	}
	if bytes.Contains(pb, []byte(`"slo"`)) {
		t.Fatalf("unadmitted drain report carries an slo block: %s", pb)
	}
}
