package lava

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"lava/internal/serve"
)

// TestScenarioOnlineOfflineParity is the elasticity harness's outermost
// contract: a scenario run ONLINE — a live fleet with the scenario's
// injectors firing inside each cell's event loop, driven over HTTP at
// concurrency 8 — produces a drain report byte-identical to the offline
// scripted equivalent (SimulateScenario). Trace-level events are replayed
// as the composed arrival stream, tick-level events fire live, model-level
// events wrap the live predictor; nothing about going online may change a
// single decision.
func TestScenarioOnlineOfflineParity(t *testing.T) {
	tr := smallTrace(t)
	pred, err := TrainModel(tr, ModelOracle)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7
	for _, name := range []string{"surge", "crunch", "drain-wave", "failures", "model-swap"} {
		name := name
		t.Run(name, func(t *testing.T) {
			roll, err := SimulateScenario(context.Background(), tr, PolicyLAVA, pred, ScenarioConfig{
				Scenario: name,
				Seed:     seed,
				Cells:    3,
				Router:   RouterFeatureHash,
			})
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(serve.FleetReportOf(tr.PoolName, roll.Cells[0].Policy, roll))
			if err != nil {
				t.Fatal(err)
			}

			fleet, err := NewFleet(tr, FleetConfig{
				ServeConfig:  ServeConfig{Policy: PolicyLAVA, Pred: pred},
				Cells:        3,
				Router:       RouterFeatureHash,
				Scenario:     name,
				ScenarioSeed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer fleet.Close()
			hs := httptest.NewServer(fleet.Handler())
			defer hs.Close()

			// The client replays the composed arrival stream — the exact
			// trace the offline arm simulated — while the fleet's injectors
			// reproduce the tick-level events internally.
			composed, err := ComposeScenario(tr, name, seed)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := (&serve.Client{Base: hs.URL}).Replay(context.Background(), composed, serve.ReplayOptions{Concurrency: 8})
			if err != nil {
				t.Fatal(err)
			}
			if rep.FleetFinal == nil {
				t.Fatal("fleet replay returned no fleet drain report")
			}
			got, err := json.Marshal(*rep.FleetFinal)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("online scenario diverged from offline:\nonline:  %s\noffline: %s", got, want)
			}
		})
	}
}
