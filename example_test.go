package lava_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"lava"
)

// exampleTrace builds the small deterministic pool every example shares:
// 16 hosts, two simulated days plus one warm-up day, fixed seed.
func exampleTrace() *lava.Trace {
	tr, err := lava.GenerateTrace(lava.TraceConfig{Hosts: 16, Days: 2, PrefillDays: 1, Seed: 7})
	if err != nil {
		panic(err)
	}
	return tr
}

// ExampleSimulate is the README quickstart, executed verbatim by `go test`:
// generate a trace, pick a model and a policy, replay, read the metrics.
func ExampleSimulate() {
	tr := exampleTrace()
	pred, err := lava.TrainModel(tr, lava.ModelOracle)
	if err != nil {
		panic(err)
	}
	res, err := lava.Simulate(tr, lava.PolicyLAVA, pred)
	if err != nil {
		panic(err)
	}
	fmt.Println("policy:", res.Policy)
	fmt.Println("placed every VM:", res.Placements > 0 && res.Failed == 0)
	fmt.Println("empty-host fraction in [0,1]:", res.AvgEmptyHostFrac >= 0 && res.AvgEmptyHostFrac <= 1)
	// Output:
	// policy: lava
	// placed every VM: true
	// empty-host fraction in [0,1]: true
}

// ExampleCompare reproduces the paper's headline comparison on one pool:
// several policies replay the same trace concurrently, and the lifetime-
// aware policies are measured against the lifetime-unaware baseline.
func ExampleCompare() {
	tr := exampleTrace()
	pred, err := lava.TrainModel(tr, lava.ModelOracle)
	if err != nil {
		panic(err)
	}
	res, err := lava.Compare(tr, pred, lava.PolicyWasteMin, lava.PolicyLAVA)
	if err != nil {
		panic(err)
	}
	base := res[lava.PolicyWasteMin]
	lavaRes := res[lava.PolicyLAVA]
	fmt.Println("policies compared:", len(res))
	fmt.Println("same workload:", base.Placements == lavaRes.Placements)
	fmt.Println("oracle LAVA no worse than baseline:", lavaRes.AvgEmptyHostFrac <= base.AvgEmptyHostFrac)
	// Output:
	// policies compared: 2
	// same workload: true
	// oracle LAVA no worse than baseline: true
}

// ExampleServe runs the online form of Simulate: a placement server over
// the trace's pool geometry, driven through the HTTP API by a sequenced
// replay client. The served decisions match the offline replay
// byte-for-byte (see internal/serve).
func ExampleServe() {
	tr := exampleTrace()
	pred, err := lava.TrainModel(tr, lava.ModelOracle)
	if err != nil {
		panic(err)
	}
	srv, err := lava.NewServer(tr, lava.ServeConfig{Policy: lava.PolicyLAVA, Pred: pred})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	rep, err := lava.ReplayTrace(context.Background(), hs.URL, tr, lava.ReplayOptions{Concurrency: 4})
	if err != nil {
		panic(err)
	}
	offline, err := lava.Simulate(tr, lava.PolicyLAVA, pred)
	if err != nil {
		panic(err)
	}
	fmt.Println("served requests:", rep.Requests > 0)
	fmt.Println("served == offline placements:", rep.Final.Metrics.Placements == offline.Placements)
	// Output:
	// served requests: true
	// served == offline placements: true
}
