// Package-level benchmarks: one per paper table/figure (plus ablations), so
// `go test -bench=. -benchmem` regenerates the headline measurements. The
// heavyweight studies run one representative slice per iteration; the full
// sweeps live in cmd/experiments.
package lava

import (
	"context"
	"fmt"
	"testing"
	"time"

	"lava/internal/cluster"
	"lava/internal/defrag"
	"lava/internal/model"
	"lava/internal/model/gbdt"
	"lava/internal/ptrace"
	"lava/internal/scheduler"
	"lava/internal/sim"
	"lava/internal/simtime"
	"lava/internal/stranding"
	"lava/internal/trace"
	"lava/internal/workload"
)

// benchTrace builds (once) the shared benchmark trace.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	tr, err := workload.Generate(workload.PoolSpec{
		Name: "bench", Zone: "bench-zone", Hosts: 48, TargetUtil: 0.65,
		Duration: 5 * simtime.Day, Prefill: 10 * simtime.Day, Seed: 1, Diurnal: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// benchModel trains (per call) the GBDT used by lifetime-aware benches.
func benchModel(b *testing.B, tr *trace.Trace) *model.GBDTPredictor {
	b.Helper()
	g, err := model.TrainGBDT(tr.Records, gbdt.Params{Trees: 150})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFig1WorkloadGeneration regenerates the Fig. 1 workload: the
// synthetic trace whose lifetime/resource split matches the paper.
func BenchmarkFig1WorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := workload.Generate(workload.PoolSpec{
			Name: "fig1", Zone: "z", Hosts: 48, TargetUtil: 0.65,
			Duration: 7 * simtime.Day, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 runs one pool of the headline empty-host study per policy.
func BenchmarkFig6(b *testing.B) {
	tr := benchTrace(b)
	pred := benchModel(b, tr)
	for _, pc := range []struct {
		name string
		mk   func() scheduler.Policy
	}{
		{"baseline", func() scheduler.Policy { return scheduler.NewWasteMin() }},
		{"la-binary", func() scheduler.Policy { return scheduler.NewLABinary(pred) }},
		{"nilas", func() scheduler.Policy { return scheduler.NewNILAS(pred, time.Minute) }},
		{"lava", func() scheduler.Policy { return scheduler.NewLAVA(pred, time.Minute) }},
	} {
		b.Run(pc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{Trace: tr, Policy: pc.mk()})
				if err != nil {
					b.Fatal(err)
				}
				_ = res.AvgEmptyHostFrac
			}
		})
	}
}

// BenchmarkTable1ABPilot runs one A/B pilot arm (Table 1 methodology).
func BenchmarkTable1ABPilot(b *testing.B) {
	tr := benchTrace(b)
	pred := benchModel(b, tr)
	half := *tr
	half.Hosts = tr.Hosts / 2
	half.Records = nil
	for i, r := range tr.Records {
		if i%2 == 0 {
			half.Records = append(half.Records, r)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Trace: &half, Policy: scheduler.NewNILAS(pred, time.Minute)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2LARS replays a recorded defrag plan under both orderings.
func BenchmarkTable2LARS(b *testing.B) {
	tr := benchTrace(b)
	eng := defrag.New(defrag.Config{
		Policy: scheduler.NewWasteMin(), Pred: model.Oracle{},
		Threshold: 0.95, HostsPerRound: 8, CheckEvery: 2 * time.Hour,
	})
	if _, err := sim.Run(sim.Config{Trace: tr, Policy: scheduler.NewWasteMin(), Components: []sim.Component{eng}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := defrag.ReplayPlan(eng.Plan, defrag.OrderShuffled, 3, 20*time.Minute)
		lars := defrag.ReplayPlan(eng.Plan, defrag.OrderLARS, 3, 20*time.Minute)
		if lars.Performed > base.Performed {
			b.Fatalf("LARS regressed: %d > %d", lars.Performed, base.Performed)
		}
	}
}

// BenchmarkFig8ModelLatency measures single-prediction latency — the number
// the paper reports as 9 us median (Fig. 8), enabling in-scheduler
// repredictions.
func BenchmarkFig8ModelLatency(b *testing.B) {
	tr := benchTrace(b)
	pred := benchModel(b, tr)
	vm := vmFromRecord(tr.Records[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.PredictRemaining(vm, time.Duration(i%8)*time.Hour)
	}
}

// BenchmarkFig9Reprediction measures a full reprediction sweep across
// uptime quantiles for one VM (the Fig. 9 evaluation kernel).
func BenchmarkFig9Reprediction(b *testing.B) {
	tr := benchTrace(b)
	pred := benchModel(b, tr)
	vm := vmFromRecord(tr.Records[len(tr.Records)/2])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := 0; q < 20; q++ {
			uptime := time.Duration(float64(q) / 20 * float64(vm.TrueLifetime))
			pred.PredictRemaining(vm, uptime)
		}
	}
}

// BenchmarkFig11Training measures GBDT training (the Fig. 11 importance
// source) on the uptime-augmented example set.
func BenchmarkFig11Training(b *testing.B) {
	tr := benchTrace(b)
	recs := tr.Records
	if len(recs) > 2000 {
		recs = recs[:2000]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.TrainGBDT(recs, gbdt.Params{Trees: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14SimulatorThroughput measures raw event-replay throughput
// (events/sec reported as events per op via b.ReportMetric).
func BenchmarkFig14SimulatorThroughput(b *testing.B) {
	tr := benchTrace(b)
	events := float64(2 * len(tr.Records))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Trace: tr, Policy: scheduler.NewWasteMin()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(events, "events/op")
}

// BenchmarkTraceOverhead prices decision tracing on the Fig. 6 fixture
// under LAVA, the heaviest scheduling path: "off" is the untraced baseline
// (the hot path must be unaffected — it stays inside the gated
// BenchmarkFig6 budget), "k3" records every decision with the top-3 scored
// alternatives into an unbounded recorder. The k3 cell is tracked in
// BENCH_trace.json by the bench-smoke CI job but intentionally NOT
// benchstat-gated: recording cost is an opt-in observability price, not a
// hot-path regression.
func BenchmarkTraceOverhead(b *testing.B) {
	tr := benchTrace(b)
	pred := benchModel(b, tr)
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(sim.Config{Trace: tr, Policy: scheduler.NewLAVA(pred, time.Minute)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("k3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := ptrace.New(ptrace.Options{K: 3, Policy: "lava"})
			if _, err := sim.Run(sim.Config{Trace: tr, Policy: scheduler.NewLAVA(pred, time.Minute), Tracer: rec}); err != nil {
				b.Fatal(err)
			}
			if rec.Len() == 0 {
				b.Fatal("traced run recorded nothing")
			}
		}
	})
}

// BenchmarkFig15NoisyOracle runs one accuracy point of the Fig. 15 sweep.
func BenchmarkFig15NoisyOracle(b *testing.B) {
	tr := benchTrace(b)
	noisy := &model.NoisyOracle{Accuracy: 0.9, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Trace: tr, Policy: scheduler.NewNILAS(noisy, time.Minute)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16NoReprediction runs the frozen-prediction ablation point.
func BenchmarkFig16NoReprediction(b *testing.B) {
	tr := benchTrace(b)
	pred := benchModel(b, tr)
	frozen := frozenBench{inner: pred}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Trace: tr, Policy: scheduler.NewNILAS(frozen, time.Minute)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17CacheIntervals compares model-call volume across cache
// refresh intervals (the G.3 ablation).
func BenchmarkFig17CacheIntervals(b *testing.B) {
	tr := benchTrace(b)
	pred := benchModel(b, tr)
	for _, iv := range []time.Duration{0, time.Minute, 15 * time.Minute} {
		name := "none"
		if iv > 0 {
			name = iv.String()
		}
		b.Run(name, func(b *testing.B) {
			var calls int64
			for i := 0; i < b.N; i++ {
				pol := scheduler.NewNILAS(pred, iv)
				if _, err := sim.Run(sim.Config{Trace: tr, Policy: pol}); err != nil {
					b.Fatal(err)
				}
				calls = pol.ModelCalls()
			}
			b.ReportMetric(float64(calls), "modelcalls/op")
		})
	}
}

// BenchmarkTable4Inference compares per-model inference cost (the latency
// side of the Table 4 comparison).
func BenchmarkTable4Inference(b *testing.B) {
	tr := benchTrace(b)
	recs := tr.Records
	if len(recs) > 1500 {
		recs = recs[:1500]
	}
	gb, err := model.TrainGBDT(recs, gbdt.Params{Trees: 100})
	if err != nil {
		b.Fatal(err)
	}
	km, err := model.TrainKM(recs, nil)
	if err != nil {
		b.Fatal(err)
	}
	dt, err := model.TrainDistTable(recs, nil)
	if err != nil {
		b.Fatal(err)
	}
	vm := vmFromRecord(recs[0])
	for _, mp := range []struct {
		name string
		p    model.Predictor
	}{{"gbdt", gb}, {"km", km}, {"dist-table", dt}} {
		b.Run(mp.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mp.p.PredictRemaining(vm, time.Hour)
			}
		})
	}
}

// BenchmarkSimulateMany measures the experiment-sweep substrate: a batch of
// simulations executed through the runner at 1 worker (the old sequential
// replay) vs GOMAXPROCS workers. The ratio is the wall-clock speedup every
// multi-configuration study (Fig. 6, Table 1, cmd/experiments -exp all)
// inherits.
func BenchmarkSimulateMany(b *testing.B) {
	tr := benchTrace(b)
	specs := make([]SimSpec, 8)
	for i := range specs {
		kind := PolicyWasteMin
		if i%2 == 1 {
			kind = PolicyBestFit
		}
		specs[i] = SimSpec{Name: fmt.Sprintf("run-%d", i), Trace: tr, Policy: kind}
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := SimulateMany(context.Background(), bc.workers, specs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioFederation measures the multi-cell scenario engine: a
// 4-cell drain-wave federation under the baseline policy, compose + shard +
// per-cell replay + rollup per op.
func BenchmarkScenarioFederation(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roll, err := SimulateScenario(context.Background(), tr, PolicyWasteMin, nil, ScenarioConfig{
			Scenario: "drain-wave", Seed: 1, Cells: 4, Router: RouterFeatureHash, Parallel: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = roll.AvgEmptyHostFrac
	}
}

// BenchmarkStranding measures one inflation-simulation probe (§2.3).
func BenchmarkStranding(b *testing.B) {
	tr := benchTrace(b)
	res, err := sim.Run(sim.Config{Trace: tr, Policy: scheduler.NewWasteMin()})
	if err != nil {
		b.Fatal(err)
	}
	mix := stranding.MixFromTrace(tr.Records, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stranding.Measure(res.FinalPool, mix, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// vmFromRecord builds a VM for prediction benches.
func vmFromRecord(r trace.Record) *clusterVM {
	return &clusterVM{ID: r.ID, Shape: r.Shape, Feat: r.Feat, TrueLifetime: r.Lifetime}
}

// frozenBench freezes initial predictions (the Fig. 16 no-reprediction arm).
type frozenBench struct{ inner model.Predictor }

func (f frozenBench) Name() string { return "frozen" }
func (f frozenBench) PredictRemaining(vm *clusterVM, uptime time.Duration) time.Duration {
	if vm.InitialPrediction == 0 {
		vm.InitialPrediction = f.inner.PredictRemaining(vm, 0)
	}
	rem := vm.InitialPrediction - uptime
	if rem <= 0 {
		return model.MinRemaining(uptime)
	}
	return rem
}

// clusterVM aliases the cluster VM type to keep bench signatures tidy.
type clusterVM = cluster.VM
