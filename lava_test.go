package lava

import (
	"context"
	"testing"
)

func smallTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := GenerateTrace(TraceConfig{Hosts: 24, Days: 3, PrefillDays: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateTraceDefaults(t *testing.T) {
	tr, err := GenerateTrace(TraceConfig{Hosts: 16, Days: 1, PrefillDays: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hosts != 16 || len(tr.Records) == 0 {
		t.Fatalf("bad trace: hosts=%d records=%d", tr.Hosts, len(tr.Records))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainModelKinds(t *testing.T) {
	tr := smallTrace(t)
	for _, kind := range []ModelKind{ModelKM, ModelDist, ModelOracle} {
		p, err := TrainModel(tr, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p.Name() == "" {
			t.Fatalf("%s: empty name", kind)
		}
	}
	if _, err := TrainModel(tr, "bogus"); err == nil {
		t.Fatal("unknown model kind must fail")
	}
}

func TestNewPolicyValidation(t *testing.T) {
	if _, err := NewPolicy(PolicyNILAS, nil); err == nil {
		t.Fatal("NILAS without predictor must fail")
	}
	if _, err := NewPolicy("bogus", nil); err == nil {
		t.Fatal("unknown policy must fail")
	}
	if _, err := NewPolicy(PolicyWasteMin, nil); err != nil {
		t.Fatal("baseline must not need a predictor")
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	tr := smallTrace(t)
	pred, err := TrainModel(tr, ModelOracle)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, PolicyNILAS, pred)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placements == 0 || res.AvgEmptyHostFrac <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestSimulateMany(t *testing.T) {
	tr := smallTrace(t)
	pred, err := TrainModel(tr, ModelOracle)
	if err != nil {
		t.Fatal(err)
	}
	specs := []SimSpec{
		{Trace: tr, Policy: PolicyWasteMin},
		{Trace: tr, Policy: PolicyNILAS, Pred: pred},
		{Trace: tr, Policy: PolicyLAVA, Pred: pred},
	}
	par, err := SimulateMany(context.Background(), 4, specs...)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SimulateMany(context.Background(), 1, specs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(specs) || len(seq) != len(specs) {
		t.Fatalf("results = %d/%d, want %d", len(par), len(seq), len(specs))
	}
	for i := range specs {
		if par[i].Policy != seq[i].Policy {
			t.Fatalf("spec %d: order differs: %s vs %s", i, par[i].Policy, seq[i].Policy)
		}
		// Determinism across worker counts, observed through the facade.
		if par[i].AvgEmptyHostFrac != seq[i].AvgEmptyHostFrac || par[i].Placements != seq[i].Placements {
			t.Errorf("spec %d (%s): parallel and sequential results differ", i, par[i].Policy)
		}
	}
	// Invalid spec fails the batch.
	if _, err := SimulateMany(context.Background(), 2, SimSpec{Trace: tr, Policy: PolicyLAVA}); err == nil {
		t.Fatal("LAVA without predictor must fail the batch")
	}
}

func TestSimulateScenarioFederation(t *testing.T) {
	tr := smallTrace(t)
	roll, err := SimulateScenario(context.Background(), tr, PolicyWasteMin, nil, ScenarioConfig{
		Scenario: "drain-wave", Seed: 3, Cells: 4, Router: RouterFeatureHash, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(roll.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(roll.Cells))
	}
	hostSum := 0
	for _, h := range roll.Hosts {
		hostSum += h
	}
	if hostSum != tr.Hosts {
		t.Fatalf("federation holds %d of %d hosts", hostSum, tr.Hosts)
	}
	if roll.Placements == 0 || roll.AvgCPUUtil <= 0 {
		t.Fatalf("implausible rollup: %+v", roll)
	}
	// Determinism across worker counts, through the facade.
	seq, err := SimulateScenario(context.Background(), tr, PolicyWasteMin, nil, ScenarioConfig{
		Scenario: "drain-wave", Seed: 3, Cells: 4, Router: RouterFeatureHash, Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq.AvgEmptyHostFrac != roll.AvgEmptyHostFrac || seq.Placements != roll.Placements || seq.Failed != roll.Failed {
		t.Fatal("scenario federation differs across worker counts")
	}
	// Unknown scenario and oversharding fail cleanly.
	if _, err := SimulateScenario(context.Background(), tr, PolicyWasteMin, nil, ScenarioConfig{Scenario: "nope"}); err == nil {
		t.Fatal("unknown scenario must fail")
	}
	if _, err := SimulateScenario(context.Background(), tr, PolicyWasteMin, nil, ScenarioConfig{Cells: tr.Hosts + 1}); err == nil {
		t.Fatal("more cells than hosts must fail")
	}
}

func TestCompare(t *testing.T) {
	tr := smallTrace(t)
	pred, err := TrainModel(tr, ModelOracle)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Compare(tr, pred, PolicyWasteMin, PolicyNILAS)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("results = %d", len(out))
	}
	if out[PolicyNILAS].AvgEmptyHostFrac <= 0 {
		t.Fatal("NILAS produced no empty hosts")
	}
}
